//! Knowledge-graph embeddings end to end: train ComplEx with negative
//! sampling on a simulated 4-node NuPS cluster and compare against the
//! shared-memory single-node baseline — a miniature of the paper's
//! headline Figure 1.
//!
//! Run with: cargo run --release --example kge_training

use std::sync::Arc;

use nups::core::system::run_epoch;
use nups::core::{heuristic_replicated_keys, NupsConfig, ParameterServer};
use nups::ml::kge::{KgeConfig, KgeTask};
use nups::ml::task::TrainTask;
use nups::sim::topology::Topology;
use nups::workloads::kg::{KgConfig, KnowledgeGraph};

fn train(label: &str, topology: Topology, kg: &Arc<KnowledgeGraph>, epochs: usize) {
    let task = KgeTask::new(
        Arc::clone(kg),
        KgeConfig { dc: 8, n_neg: 4, eval_triples: 150, ..KgeConfig::default() },
        topology.total_workers(),
    );

    // NuPS untuned heuristic: replicate keys accessed >100× the mean.
    let replicated = heuristic_replicated_keys(&task.direct_frequencies());
    println!("\n[{label}] replicating {} hot keys", replicated.len());

    let cfg = NupsConfig::nups(topology, task.n_keys(), task.value_len())
        .with_replicated_keys(replicated);
    let ps = ParameterServer::new(cfg, |k, v| task.init_value(k, v));
    for d in task.distributions() {
        ps.register_distribution(d.base_key, d.n, d.kind, d.level);
    }

    let mut workers = ps.workers();
    for epoch in 0..epochs {
        run_epoch(&mut workers, |i, w| {
            task.run_epoch(w, i, epoch);
        });
        ps.flush_replicas();
        let mrr = task.evaluate(&ps.read_all());
        println!(
            "[{label}] epoch {:>2}  virtual time {:>12}  filtered MRR {:.4}",
            epoch + 1,
            ps.virtual_time(),
            mrr
        );
    }
    drop(workers);
    ps.shutdown();
}

fn main() {
    let kg = Arc::new(KnowledgeGraph::generate(KgConfig {
        n_entities: 2_000,
        n_relations: 16,
        n_train: 20_000,
        n_test: 400,
        n_clusters: 16,
        popularity_alpha: 1.0,
        noise: 0.05,
        seed: 7,
    }));
    println!(
        "synthetic KG: {} entities, {} relations, {} train triples",
        kg.config.n_entities,
        kg.config.n_relations,
        kg.train.len()
    );

    let epochs = 3;
    train("single node, 2 workers", Topology::single_node(2), &kg, epochs);
    train("NuPS, 4 nodes x 2 workers", Topology::new(4, 2), &kg, epochs);
}
