//! Data partitioners: how training data is split over nodes and workers.
//!
//! The paper partitions KGE triples randomly over nodes, WV sentences by
//! range, and MF cells by row over nodes / by column visiting order within
//! a node (Section 5.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Split `items` into `n_parts` by hashing a deterministic shuffle: random
/// partitioning as used for KGE triples.
pub fn partition_random<T: Clone>(items: &[T], n_parts: usize, seed: u64) -> Vec<Vec<T>> {
    assert!(n_parts > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parts = vec![Vec::with_capacity(items.len() / n_parts + 1); n_parts];
    for item in items {
        parts[rng.gen_range(0..n_parts)].push(item.clone());
    }
    parts
}

/// Split contiguously (sentence ranges for WV).
pub fn partition_contiguous<T: Clone>(items: &[T], n_parts: usize) -> Vec<Vec<T>> {
    assert!(n_parts > 0);
    let chunk = items.len().div_ceil(n_parts);
    let mut parts: Vec<Vec<T>> = items.chunks(chunk.max(1)).map(|c| c.to_vec()).collect();
    parts.resize(n_parts, Vec::new());
    parts
}

/// Split by a key function (MF: by row over nodes).
pub fn partition_by<T: Clone>(
    items: &[T],
    n_parts: usize,
    key: impl Fn(&T) -> usize,
) -> Vec<Vec<T>> {
    assert!(n_parts > 0);
    let mut parts = vec![Vec::new(); n_parts];
    for item in items {
        parts[key(item) % n_parts].push(item.clone());
    }
    parts
}

/// MF worker visiting order: group a worker's cells by column, then visit
/// columns in random order with the cells within a column shuffled too.
/// This creates the column-access locality the paper's MF implementation
/// relies on.
pub fn column_visit_order<T: Clone>(cells: &[T], col: impl Fn(&T) -> u32, seed: u64) -> Vec<T> {
    let mut by_col: rustc_hash::FxHashMap<u32, Vec<T>> = rustc_hash::FxHashMap::default();
    for c in cells {
        by_col.entry(col(c)).or_default().push(c.clone());
    }
    let mut cols: Vec<u32> = by_col.keys().copied().collect();
    cols.sort_unstable();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..cols.len()).rev() {
        cols.swap(i, rng.gen_range(0..=i));
    }
    let mut out = Vec::with_capacity(cells.len());
    for c in cols {
        let mut group = by_col.remove(&c).unwrap();
        for i in (1..group.len()).rev() {
            group.swap(i, rng.gen_range(0..=i));
        }
        out.extend(group);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_partition_preserves_items_and_balances() {
        let items: Vec<u32> = (0..10_000).collect();
        let parts = partition_random(&items, 4, 1);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10_000);
        for p in &parts {
            assert!(p.len() > 2_000 && p.len() < 3_000, "unbalanced: {}", p.len());
        }
        let mut all: Vec<u32> = parts.concat();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn contiguous_partition_orders_and_pads() {
        let items: Vec<u32> = (0..10).collect();
        let parts = partition_contiguous(&items, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], vec![0, 1, 2]);
        assert_eq!(parts[3], vec![9]);
        // More parts than items: empty tails.
        let parts = partition_contiguous(&items[..2], 4);
        assert_eq!(parts.len(), 4);
        assert!(parts[3].is_empty());
    }

    #[test]
    fn partition_by_key_routes_consistently() {
        let items: Vec<(u32, u32)> = (0..100).map(|i| (i % 7, i)).collect();
        let parts = partition_by(&items, 3, |&(row, _)| row as usize);
        for (p, part) in parts.iter().enumerate() {
            for &(row, _) in part {
                assert_eq!(row as usize % 3, p);
            }
        }
    }

    #[test]
    fn column_visit_order_groups_columns() {
        let cells: Vec<(u32, u32)> = (0..300).map(|i| (i % 10, i)).collect();
        let visit = column_visit_order(&cells, |&(c, _)| c, 5);
        assert_eq!(visit.len(), 300);
        // Each column's cells must form one contiguous run.
        let mut seen = rustc_hash::FxHashSet::default();
        let mut current = visit[0].0;
        seen.insert(current);
        for &(c, _) in &visit[1..] {
            if c != current {
                assert!(seen.insert(c), "column {c} visited twice");
                current = c;
            }
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn column_visit_order_is_seed_deterministic() {
        let cells: Vec<(u32, u32)> = (0..100).map(|i| (i % 5, i)).collect();
        let a = column_visit_order(&cells, |&(c, _)| c, 9);
        let b = column_visit_order(&cells, |&(c, _)| c, 9);
        assert_eq!(a, b);
        let c = column_visit_order(&cells, |&(c, _)| c, 10);
        assert_ne!(a, c, "different seed should shuffle differently");
    }
}
