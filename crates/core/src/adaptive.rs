//! Adaptive technique management: online hot-key detection and live
//! replication ↔ relocation migration.
//!
//! The paper picks each key's management technique *statically before
//! training* from dataset statistics and concedes the choice can be wrong
//! when access patterns shift. This module makes the choice adaptive:
//!
//! * Workers sample every key access into a lightweight count-min sketch
//!   ([`nups_sim::metrics::FreqSketch`]) — one relaxed atomic increment per
//!   row on the hot path.
//! * At every `adapt_every`-th replica-synchronization rendezvous, the
//!   last-arriving worker (the *coordinator* — the same rendezvous
//!   substitution replica sync uses) re-scores all keys against the
//!   paper's replication-benefit heuristic: promote a relocated key whose
//!   estimated frequency exceeds `promote_factor ×` the mean, demote a
//!   replicated key that fell below `demote_factor ×` the mean
//!   (`demote_factor ≪ promote_factor` gives hysteresis against thrash).
//! * Migrations execute while **every active worker is parked at the
//!   gate**, which is what makes the whole scheme deterministic in virtual
//!   time: the sketch contents at a rendezvous are a pure function of the
//!   deterministic per-worker access streams, and no worker can race a
//!   technique flip. Server threads stay live, so the execution must still
//!   be exact under late-chasing protocol messages — see the promotion
//!   settle/sweep protocol below.
//!
//! **Promotion** (relocated → replicated): follow the home directory to
//! the current owner, waiting out any in-flight relocation chain; convert
//! the owner's entry into a [`Promoted`](crate::store) tombstone (taking
//! the authoritative value under the shard latch, so a concurrent server
//! push lands either in the taken value or — after the take — in the
//! replica update buffer, exactly once); sweep stale in-flight marks whose
//! localize requests the home server's migration guard dropped; install
//! the value into every node's replica set. Priced as the owner
//! broadcasting one [`Msg::Promote`] to each peer.
//!
//! **Demotion** (replicated → relocated): collapse the replica slot into a
//! single value (the synced state plus any unsynced per-node deltas — the
//! "final delta all-reduce"), install it at the elected owner (the key's
//! home node), redirect leftover tombstones, reset the home directory, and
//! free the slot for reuse. Priced as one final all-reduce round over the
//! demoted slots plus one small [`Msg::Demote`] notice per peer.

use std::cmp::Reverse;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};
use rustc_hash::{FxHashMap, FxHashSet};

use nups_sim::cost::WIRE_HEADER_BYTES;
use nups_sim::metrics::FreqSketch;
use nups_sim::net::Frame;
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::{Addr, NodeId};
use nups_sim::trace::actor;
use nups_sim::WireEncode;

use crate::key::Key;
use crate::messages::Msg;
use crate::node::Shared;
use crate::store::{PromoteTake, QueuedOp};
use crate::value::add_assign;

/// Keys paired with their sketch-estimated frequency, scoring order.
type ScoredKeys = Vec<(u64, Key)>;

/// The node that runs adaptation rounds in per-node deployments.
pub const ADAPT_LEADER: NodeId = NodeId(0);

/// How long migration control loops wait for relocation traffic to drain
/// before declaring the protocol wedged. Generous: the pending chains are
/// finite and served by live server threads in microseconds.
const MIGRATION_SETTLE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Tuning knobs for the adaptive technique manager.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Run an adaptation round every this many synchronization merges.
    pub adapt_every: u64,
    /// Promote a relocated key when its estimated access frequency exceeds
    /// `promote_factor ×` the mean (the paper's untuned heuristic uses
    /// 100×).
    pub promote_factor: f64,
    /// Demote a replicated key when its estimate falls below
    /// `demote_factor ×` the mean. Keep well under `promote_factor` for
    /// hysteresis.
    pub demote_factor: f64,
    /// Hard cap on concurrently replicated keys.
    pub max_replicated: usize,
    /// At most this many promotions and this many demotions per round
    /// (bounds per-round migration cost).
    pub max_migrations_per_round: usize,
    /// Sketch width exponent: `1 << sketch_bits` counters per row.
    pub sketch_bits: u32,
    /// Halve the sketch after every adaptation round so drifting hot sets
    /// age out.
    pub decay: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            adapt_every: 4,
            promote_factor: 100.0,
            demote_factor: 25.0,
            max_replicated: 1 << 16,
            max_migrations_per_round: 64,
            sketch_bits: 16,
            decay: true,
        }
    }
}

/// The online hot-key detector plus migration coordinator.
pub struct AdaptiveManager {
    cfg: AdaptiveConfig,
    sketch: FreqSketch,
    merges: AtomicU64,
}

impl AdaptiveManager {
    pub fn new(cfg: AdaptiveConfig) -> AdaptiveManager {
        let sketch = FreqSketch::new(cfg.sketch_bits);
        AdaptiveManager { cfg, sketch, merges: AtomicU64::new(0) }
    }

    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Record one worker access to `key` (called from every pull/push
    /// path; one relaxed atomic increment per sketch row).
    #[inline]
    pub fn record_access(&self, key: Key) {
        self.sketch.record(key, 1);
    }

    pub fn sketch(&self) -> &FreqSketch {
        &self.sketch
    }

    /// Called by the synchronization merge (all active workers parked).
    /// Every `adapt_every`-th merge runs an adaptation round; returns the
    /// modelled duration of any migrations, which the gate folds into the
    /// merge time (slipping the next boundary, raising the congestion
    /// multiplier — migration traffic competes like sync traffic does).
    ///
    /// Per-node deployments take the distributed branch instead: peers ship
    /// their sketch window to the leader, the leader scores from the merged
    /// view and broadcasts a plan; the plan's migrations execute on the
    /// server threads, never under this gate.
    pub fn maybe_adapt(&self, shared: &Shared) -> SimDuration {
        let n = self.merges.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.cfg.adapt_every.max(1)) {
            return SimDuration::ZERO;
        }
        if let Some(dist) = &shared.dist_adaptive {
            self.adapt_distributed(shared, dist);
            return SimDuration::ZERO;
        }
        self.adapt(shared)
    }

    /// Score all keys against the merged sketch: hottest promotions first,
    /// coldest demotions first, ties broken by key, both truncated to the
    /// configured per-round and capacity bounds. Deterministic in the
    /// sketch contents and the current technique map.
    fn score(&self, shared: &Shared) -> (ScoredKeys, ScoredKeys) {
        let total = self.sketch.total();
        if total == 0 {
            return (Vec::new(), Vec::new());
        }
        let n_keys = shared.keyspace.n_keys();
        let mean = total as f64 / n_keys as f64;
        let promote_thr = (self.cfg.promote_factor * mean).max(1.0);
        let demote_thr = self.cfg.demote_factor * mean;

        let replicated = shared.technique.replicated_flags();
        let mut promos: Vec<(u64, Key)> = Vec::new();
        let mut demos: Vec<(u64, Key)> = Vec::new();
        for key in 0..n_keys {
            let est = self.sketch.estimate(key);
            if replicated[key as usize] {
                if (est as f64) < demote_thr {
                    demos.push((est, key));
                }
            } else if est as f64 > promote_thr {
                promos.push((est, key));
            }
        }
        promos.sort_by_key(|&(est, key)| (Reverse(est), key));
        demos.sort_by_key(|&(est, key)| (est, key));
        demos.truncate(self.cfg.max_migrations_per_round);
        let slots_after_demote = shared.technique.n_replicated().saturating_sub(demos.len());
        let capacity = self.cfg.max_replicated.saturating_sub(slots_after_demote);
        promos.truncate(self.cfg.max_migrations_per_round.min(capacity));
        (promos, demos)
    }

    /// One distributed adaptation round at a due merge. Peers ship their
    /// sketch window to the leader; the leader scores and broadcasts a
    /// versioned plan — but only once the previous plan fully settled
    /// locally, so its technique map (and thus the slot assignment it
    /// simulates) reflects every migration it has ever issued.
    fn adapt_distributed(&self, shared: &Shared, dist: &DistAdaptive) {
        let boundary = shared.gate.merge_boundary();
        if dist.me != ADAPT_LEADER {
            let (rows, total) = self.sketch.drain_sparse();
            if total == 0 {
                return;
            }
            let [row0, row1] = rows;
            let report = Msg::SketchReport { from: dist.me, total, row0, row1 };
            post_server(shared, dist.me, ADAPT_LEADER, boundary, &report);
            return;
        }
        let issued = dist.last_issued();
        if !dist.quiesced(issued) || !dist.all_acked(issued) {
            // The previous plan is still migrating somewhere in the
            // cluster; a new plan could then demote a key whose promotion
            // a lagging peer has not even installed, and the leader's
            // technique map would mis-assign slots. Skip the round — the
            // sketch keeps accumulating, and serializing rounds cluster-
            // wide keeps at most one plan's traffic in flight.
            return;
        }
        shared.metrics.node(ADAPT_LEADER).inc(|m| &m.adaptation_rounds);
        let (promos, demos) = self.score(shared);
        if promos.is_empty() && demos.is_empty() {
            if self.cfg.decay {
                self.sketch.decay();
            }
            return;
        }
        let demo_keys: Vec<Key> = demos.iter().map(|&(_, k)| k).collect();
        let promo_keys: Vec<Key> = promos.iter().map(|&(_, k)| k).collect();
        let promotions = shared.technique.plan_slots(&demo_keys, &promo_keys);
        let epoch = dist.state().issue_plan();
        let n_migrations = (promotions.len() + demo_keys.len()) as u64;
        shared.obs.event(
            boundary,
            ADAPT_LEADER.0,
            actor::SYNC,
            "adapt_plan_issue",
            epoch,
            n_migrations,
        );
        let plan = Msg::AdaptPlan { epoch, promotions, demotions: demo_keys };
        for node in shared.topology.nodes() {
            // Including the leader itself: applying the plan on the server
            // loop serializes it with every other protocol message.
            post_server(shared, ADAPT_LEADER, node, boundary, &plan);
        }
        if self.cfg.decay {
            self.sketch.decay();
        }
    }

    /// Score all keys and execute the chosen migrations.
    fn adapt(&self, shared: &Shared) -> SimDuration {
        shared.metrics.node(NodeId(0)).inc(|m| &m.adaptation_rounds);
        let (promos, demos) = self.score(shared);
        if promos.is_empty() && demos.is_empty() {
            if self.cfg.decay {
                self.sketch.decay();
            }
            return SimDuration::ZERO;
        }

        let boundary = shared.gate.merge_boundary();
        shared.obs.event(
            boundary,
            NodeId(0).0,
            actor::SYNC,
            "adapt_round",
            promos.len() as u64,
            demos.len() as u64,
        );
        let mut duration = SimDuration::ZERO;
        // Demotions first: they free replica slots promotions can reuse.
        if !demos.is_empty() {
            duration += demote_keys(shared, &demos, boundary);
        }
        let promo_keys: Vec<Key> = promos.iter().map(|&(_, k)| k).collect();
        if !promo_keys.is_empty() {
            // Determinism requires that an already-issued localize is
            // *always* honored before the flip, never raced: whether the
            // home server had drained it when the guard went up is a
            // real-time accident. Waiting for relocation quiescence first
            // makes every pending chain complete in both runs; only then
            // does the guard go up (pure defense — nothing is left for it
            // to drop in any reachable schedule).
            wait_relocation_quiescence(shared, &promo_keys);
            shared.technique.begin_migrations(&promo_keys);
            for &key in &promo_keys {
                duration += promote_key(shared, key, boundary);
            }
            shared.technique.end_migrations();
        }
        shared.technique.bump_epoch();
        // Demotions installed store entries and promotions redirected
        // chains: wake any parked evaluation reads to re-check.
        shared.runtime.notify_progress();
        if self.cfg.decay {
            self.sketch.decay();
        }
        duration
    }
}

/// Post a protocol message to `dst`'s server port over the fabric.
fn post_server(shared: &Shared, src: NodeId, dst: NodeId, sent_at: SimTime, msg: &Msg) {
    shared.fabric.post(Frame {
        src: Addr::server(src),
        dst: Addr::server(dst),
        sent_at,
        payload: msg.to_bytes(),
    });
}

/// Per-node state of the distributed adaptation protocol.
///
/// In per-node deployments migrations cannot run under the sync gate — the
/// gate only parks *this* node's workers. Instead the leader broadcasts a
/// versioned [`Msg::AdaptPlan`] and every node's server thread applies it
/// in plan order, fencing migrating keys so late-chasing traffic takes the
/// tombstone paths. This struct tracks where each node stands in that
/// pipeline; all transitions happen on the server thread (or, for
/// [`issue_plan`](DistState::issue_plan), under the leader's gate merge),
/// serialized by the mutex.
pub struct DistAdaptive {
    me: NodeId,
    state: Mutex<DistState>,
}

#[derive(Default)]
pub(crate) struct DistState {
    /// Leader only: epoch of the most recently broadcast plan.
    pub(crate) last_issued: u64,
    /// Epoch of the last plan this node finished *dispatching* (demotions
    /// applied, promotions initiated or deferred).
    pub(crate) applied_epoch: u64,
    /// Keys whose promotion is in flight: key → (plan epoch, target slot).
    pub(crate) pending_promote: FxHashMap<Key, (u64, u32)>,
    /// Demotions from a later plan that arrived while the key's own
    /// promotion (from an earlier plan) was still in flight.
    pub(crate) deferred_demotes: FxHashSet<Key>,
    /// `Msg::Promote` installs that arrived before their plan (same-port
    /// FIFO makes this leader-side impossible, but a peer's Promote
    /// broadcast can overtake the leader's plan broadcast).
    pub(crate) buffered_promotes: Vec<(u64, Key, u32, Vec<f32>)>,
    /// Sync-broadcast deltas for keys whose promotion is pending here: the
    /// sender already installed the replica, we have not. Applied right
    /// after the install so this node's base copy converges with the
    /// sender's (the coordinator's copy is what finalize reads). Only
    /// deltas from the pending promotion's own era are stashed — a
    /// stale-era delta (broadcast before the key's previous demotion) is
    /// already conserved through the home's store chain, and stashing it
    /// too would double-count it in the re-promoted replica.
    pub(crate) pending_deltas: FxHashMap<Key, Vec<Vec<f32>>>,
    /// Sync-broadcast deltas whose plan has not arrived here yet: the
    /// sender applied a later [`Msg::AdaptPlan`] (its stamp exceeds our
    /// `applied_epoch`) and its broadcast overtook the leader's plan on a
    /// different link. Re-dispatched, in order, as each plan applies —
    /// dropping them instead would lose the delta whenever this node is
    /// the coordinator (its replica copy is what finalize reads).
    pub(crate) early_deltas: Vec<(u64, Key, Vec<f32>)>,
    /// Self-addressed residue pushes (demotion accumulators, stray keyed
    /// deltas folded at the home) not yet acknowledged.
    pub(crate) acks_outstanding: usize,
    /// Highest epoch this node has sent a [`Msg::PlanAck`] for.
    pub(crate) last_acked: u64,
    /// Leader only: highest epoch acked per node (self included).
    pub(crate) peer_acked: Vec<u64>,
}

impl DistState {
    /// Leader: mint the next plan epoch.
    pub(crate) fn issue_plan(&mut self) -> u64 {
        self.last_issued += 1;
        self.last_issued
    }

    /// No migration work from any applied plan is still in flight locally.
    pub(crate) fn settled(&self) -> bool {
        self.pending_promote.is_empty()
            && self.deferred_demotes.is_empty()
            && self.buffered_promotes.is_empty()
            && self.pending_deltas.is_empty()
            && self.early_deltas.is_empty()
            && self.acks_outstanding == 0
    }
}

impl DistAdaptive {
    pub fn new(me: NodeId, n_nodes: u16) -> DistAdaptive {
        let state = DistState { peer_acked: vec![0; n_nodes as usize], ..DistState::default() };
        DistAdaptive { me, state: Mutex::new(state) }
    }

    pub fn me(&self) -> NodeId {
        self.me
    }

    pub(crate) fn state(&self) -> MutexGuard<'_, DistState> {
        self.state.lock()
    }

    /// Has this node fully applied every plan up to and including `epoch`?
    pub fn quiesced(&self, epoch: u64) -> bool {
        let st = self.state.lock();
        st.applied_epoch >= epoch && st.settled()
    }

    /// Leader: epoch of the most recently issued plan.
    pub fn last_issued(&self) -> u64 {
        self.state.lock().last_issued
    }

    /// Leader: record a [`Msg::PlanAck`] (or the leader's own local ack).
    pub(crate) fn note_ack(&self, from: NodeId, epoch: u64) {
        let mut st = self.state.lock();
        let slot = &mut st.peer_acked[from.index()];
        *slot = (*slot).max(epoch);
    }

    /// Leader: has every node acked plan `epoch`?
    pub fn all_acked(&self, epoch: u64) -> bool {
        self.state.lock().peer_acked.iter().all(|&e| e >= epoch)
    }
}

/// Park until no node holds an in-flight relocation mark for any of
/// `keys`. A mark exists from the instant a worker issues a localize
/// until the transfer installs, and every worker is parked, so the set of
/// pending chains is fixed and finite; the server threads drain each one
/// in bounded real time (each install wakes us via the runtime's progress
/// notification), and no new mark can appear after the last one clears.
fn wait_relocation_quiescence(shared: &Shared, keys: &[Key]) {
    let quiesced = shared.runtime.wait_until(MIGRATION_SETTLE_TIMEOUT, &mut || {
        !keys.iter().any(|&k| shared.nodes.iter().any(|n| n.store.is_inflight(k)))
    });
    if !quiesced {
        // See the settle-loop comment in `promote_key`: a panic here would
        // wedge the parked workers, so fail the process fast instead.
        eprintln!("fatal: relocation traffic failed to quiesce before promotion");
        std::process::abort();
    }
}

/// Record `peers` priced migration messages of `payload` bytes each.
fn count_migration_msgs(shared: &Shared, node: NodeId, peers: u16, payload: usize) {
    let m = shared.metrics.node(node);
    m.add(|m| &m.migration_msgs, peers as u64);
    m.add(|m| &m.migration_bytes, (peers as usize * (payload + WIRE_HEADER_BYTES)) as u64);
}

/// Migrate one key relocated → replicated. Runs on the coordinator while
/// all active workers are parked; see the module docs for the settle/sweep
/// protocol and its race arguments.
fn promote_key(shared: &Shared, key: Key, boundary: SimTime) -> SimDuration {
    let home = shared.keyspace.home(key);
    let home_state = &shared.nodes[home.index()];
    // Settle: relocation chains for this key are finite (the migration
    // guard blocks new ones) and every chain is visible through the home
    // directory, so following the directory until the take succeeds
    // terminates. Server threads keep draining the chain in real time and
    // every install wakes this parked wait to retry the take.
    let mut taken: Option<(NodeId, Vec<f32>)> = None;
    let settled = shared.runtime.wait_until(MIGRATION_SETTLE_TIMEOUT, &mut || {
        let owner = home_state.directory.owner(key);
        match shared.nodes[owner.index()].store.begin_promote(key) {
            PromoteTake::Taken(v) => {
                taken = Some((owner, v));
                true
            }
            PromoteTake::InFlight | PromoteTake::NotHere(_) => false,
        }
    });
    let Some(mut value) = (if settled { taken } else { None }) else {
        // A panic here would unwind inside the gate merge and leave every
        // other worker parked forever (parking_lot does not poison), so a
        // settle failure — unreachable unless the relocation protocol
        // regresses — fails the whole process fast instead of wedging it.
        eprintln!("fatal: relocation chain for key {key} failed to settle for promotion");
        std::process::abort();
    };
    let (owner, value) = (value.0, &mut value.1);

    // Sweep stale in-flight marks on every other node (their localize
    // requests were — or will be — dropped by the migration guard). Any
    // parked operations fold into the taken value exactly once; replies go
    // out as real messages from that node's server address.
    for node in &shared.nodes {
        if node.node == owner {
            continue;
        }
        let sweep = node.store.sweep_for_promote(key);
        for op in sweep.waiters {
            let (msg, reply_to) = match op {
                QueuedOp::Push { delta, reply_to, hops } => {
                    add_assign(value, &delta);
                    (Msg::PushAck { key, hops: hops.saturating_add(1) }, reply_to)
                }
                QueuedOp::Pull { reply_to, hops } => (
                    Msg::PullResp { key, value: value.clone(), hops: hops.saturating_add(1) },
                    reply_to,
                ),
            };
            shared.fabric.post(Frame {
                src: Addr::server(node.node),
                dst: reply_to,
                sent_at: boundary,
                payload: msg.to_bytes(),
            });
        }
    }

    // Install the replica storage on every node first, publish the slot
    // second: a reader that sees the new assignment is then guaranteed
    // backing storage (no reachable schedule reads in between — a
    // worker-synchronous request outstanding during the round would mean
    // its sender never reached the rendezvous — but the order costs
    // nothing and removes the window outright).
    let slot = shared.technique.next_slot();
    shared.sync.install_slot(slot, key, value);
    let assigned = shared.technique.promote(key);
    debug_assert_eq!(assigned, slot, "peeked slot must match the promoted slot");
    shared.obs.event(boundary, home.0, actor::SYNC, "promote", key, slot as u64);

    // Price: the owner broadcasts the value to every peer.
    let peers = shared.topology.n_nodes - 1;
    let payload = Msg::Promote { key, epoch: 0, slot, value: std::mem::take(value) }.encoded_len();
    shared.metrics.node(owner).inc(|m| &m.promotions);
    count_migration_msgs(shared, owner, peers, payload);
    shared.runtime.pricing().broadcast(peers, payload)
}

/// Migrate `demos` replicated → relocated: final delta all-reduce per
/// slot, owner election (the home node), slot release.
fn demote_keys(shared: &Shared, demos: &[(u64, Key)], boundary: SimTime) -> SimDuration {
    let peers = shared.topology.n_nodes - 1;
    let mut duration = SimDuration::ZERO;
    let mut allreduce_bytes = 0usize;
    for &(_, key) in demos {
        let slot = shared.technique.replica_slot(key).expect("demoted key has a slot");
        let value = shared.sync.collapse_slot(slot);
        allreduce_bytes += 4 + 4 * value.len();
        let owner = shared.keyspace.home(key);
        shared.nodes[owner.index()].store.install_demoted(key, value, boundary);
        for node in &shared.nodes {
            if node.node != owner {
                node.store.redirect_for_demote(key, owner);
            }
        }
        // The home *is* the elected owner; this also clears any direction
        // left over from the key's pre-promotion relocation history.
        shared.nodes[owner.index()].directory.set_owner(key, owner);
        shared.technique.demote(key);
        shared.obs.event(boundary, owner.0, actor::SYNC, "demote", key, slot as u64);

        let payload = Msg::Demote { key, owner }.encoded_len();
        shared.metrics.node(owner).inc(|m| &m.demotions);
        count_migration_msgs(shared, owner, peers, payload);
        duration += shared.runtime.pricing().broadcast(peers, payload);
    }
    // One final all-reduce round carrying the demoted slots' last deltas.
    duration + shared.runtime.pricing().allreduce(shared.topology.sync_rounds(), allreduce_bytes)
}
