//! Determinism regression: the reproducibility claim of the simulated
//! substrate. Two runs of the same seeded configuration must produce
//! byte-identical metrics snapshots, bit-identical model state, and the
//! same virtual makespan — regardless of how the real-time race between
//! worker threads and server threads plays out.

use nups::core::system::run_epoch;
use nups::core::{
    DistributionKind, NupsConfig, ParameterServer, PsWorker, ReuseParams, SamplingScheme,
};
use nups::sim::metrics::MetricsSnapshot;
use nups::sim::time::SimTime;
use nups::sim::topology::{NodeId, Topology, WorkerId};

/// One full run of a seeded two-node workload exercising relocation,
/// replication, synchronization, and pooled sampling from one worker.
/// Returns everything an experiment would report.
fn seeded_run(seed: u64) -> (SimTime, MetricsSnapshot, Vec<Vec<u32>>) {
    let topo = Topology::new(2, 1);
    let n_keys = 40u64;
    let cfg =
        NupsConfig::nups(topo, n_keys, 2).with_replicated_keys(vec![0, 1, 2, 3]).with_seed(seed);
    let ps = ParameterServer::new(cfg, |k, v| v.fill(k as f32 * 0.25));
    let dist = ps.register_distribution_with_scheme(
        4,
        n_keys - 4,
        DistributionKind::Uniform,
        SamplingScheme::Reuse(ReuseParams { pool_size: 8, use_frequency: 2 }),
    );

    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let mut buf = vec![0.0f32; 2];
    for round in 0..20 {
        for k in 0..n_keys {
            if round % 5 == 0 {
                w.localize(&[k]);
            }
            w.pull(k, &mut buf);
            w.push(k, &[0.125, -0.25]);
            w.charge_compute(500);
        }
        // Pooled sampling: prepare announces pools (async localizes), the
        // drain pulls every announced key, so nothing is left in flight.
        let mut h = w.prepare_sample(dist, 16);
        let drawn = w.pull_sample(&mut h, 16);
        assert_eq!(drawn.len(), 16);
    }
    let makespan = w.now();
    drop(w);

    ps.flush_replicas();
    // Bit-exact model state (f32 comparison via bit patterns).
    let model: Vec<Vec<u32>> =
        ps.read_all().into_iter().map(|v| v.into_iter().map(f32::to_bits).collect()).collect();
    let metrics = ps.metrics();
    ps.shutdown();
    (makespan, metrics, model)
}

#[test]
fn seeded_runs_are_byte_identical() {
    let (t1, m1, s1) = seeded_run(42);
    let (t2, m2, s2) = seeded_run(42);
    assert_eq!(t1, t2, "virtual makespan must be deterministic");
    assert_eq!(s1, s2, "model state must be bit-identical");
    // Byte-identical snapshots: compare the full rendered counter table so
    // a failure names the counter that diverged.
    let render = |m: &MetricsSnapshot| format!("{m:#?}");
    assert_eq!(render(&m1), render(&m2), "metrics snapshots must be byte-identical");
    assert!(t1 > SimTime::ZERO);
    assert!(m1.samples_drawn > 0 && m1.relocations > 0, "workload too trivial to guard");
}

#[test]
fn different_seeds_change_sampling_but_not_coverage() {
    let (_, m1, s1) = seeded_run(7);
    let (_, m2, _) = seeded_run(8);
    // The deterministic direct-access part is seed-independent.
    assert_eq!(m1.samples_drawn, m2.samples_drawn);
    assert_eq!(s1.len(), 40);
}

/// Multi-worker epochs keep the *aggregate* invariants deterministic even
/// though thread interleaving is real: every push lands exactly once.
#[test]
fn multi_worker_totals_are_exact_across_runs() {
    let run = || -> Vec<u32> {
        let topo = Topology::new(2, 2);
        let cfg = NupsConfig::lapse(topo, 8, 1);
        let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
        let mut ws = ps.workers();
        run_epoch(&mut ws, |i, w| {
            for round in 0..50 {
                let key = ((i + round) % 8) as u64;
                if round % 10 == i {
                    w.localize(&[key]);
                }
                w.push(key, &[1.0]);
            }
        });
        drop(ws);
        let model: Vec<u32> = ps.read_all().into_iter().map(|v| v[0].to_bits()).collect();
        ps.shutdown();
        model
    };
    assert_eq!(run(), run(), "per-key push totals must not depend on interleaving");
}
