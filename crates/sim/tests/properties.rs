//! Property-based tests of the simulation substrate: cost-model
//! monotonicity, metric algebra, and clock invariants.

use proptest::prelude::*;

use nups_sim::clock::ClusterClocks;
use nups_sim::cost::CostModel;
use nups_sim::metrics::{ClusterMetrics, MetricsSnapshot};
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::{NodeId, Topology, WorkerId};

proptest! {
    /// Sending more bytes never costs less, and latency is a lower bound.
    #[test]
    fn message_cost_is_monotone_in_bytes(a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let c = CostModel::cluster_default();
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(c.message(small) <= c.message(large));
        prop_assert!(c.message(small) >= c.one_way_latency);
        prop_assert!(c.transfer(small) <= c.transfer(large));
    }

    /// A round trip always costs at least two one-way latencies, and an
    /// all-reduce scales linearly in rounds.
    #[test]
    fn round_trip_and_allreduce_structure(req in 0usize..100_000, resp in 0usize..100_000, rounds in 0u32..8) {
        let c = CostModel::cluster_default();
        prop_assert!(c.round_trip(req, resp) >= c.one_way_latency * 2);
        let one = c.allreduce(1, req);
        prop_assert_eq!(c.allreduce(rounds, req), one * rounds as u64);
    }

    /// Compute cost is additive in flops.
    #[test]
    fn compute_cost_additive(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let c = CostModel::cluster_default();
        let lhs = c.compute(a + b).as_nanos() as i128;
        let rhs = (c.compute(a) + c.compute(b)).as_nanos() as i128;
        // Floating-point conversion may wobble by a nanosecond.
        prop_assert!((lhs - rhs).abs() <= 2, "{lhs} vs {rhs}");
    }

    /// Snapshot algebra: merge is commutative and diff inverts merge.
    #[test]
    fn metrics_merge_commutes(xs in proptest::collection::vec(0u64..1000, 4), ys in proptest::collection::vec(0u64..1000, 4)) {
        let cm = ClusterMetrics::new(2);
        let a = cm.node(NodeId(0));
        let b = cm.node(NodeId(1));
        a.add(|m| &m.msgs_sent, xs[0]);
        a.add(|m| &m.bytes_sent, xs[1]);
        a.add(|m| &m.relocations, xs[2]);
        a.add(|m| &m.sync_bytes, xs[3]);
        b.add(|m| &m.msgs_sent, ys[0]);
        b.add(|m| &m.bytes_sent, ys[1]);
        b.add(|m| &m.relocations, ys[2]);
        b.add(|m| &m.sync_bytes, ys[3]);
        let sa = cm.snapshot_node(NodeId(0));
        let sb = cm.snapshot_node(NodeId(1));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(cm.total(), sa.merge(&sb));
        prop_assert_eq!(sa.merge(&sb) - sb, sa);
        prop_assert_eq!(sa - sa, MetricsSnapshot::default());
    }

    /// Clocks: makespan is the max of worker positions, barriers are
    /// idempotent, and align never moves a clock backwards.
    #[test]
    fn clock_invariants(advances in proptest::collection::vec((0u16..4, 0u64..1_000_000), 1..40)) {
        let topo = Topology::new(2, 2);
        let clocks = ClusterClocks::new(topo);
        let mut handles: Vec<_> = topo.workers().map(|w| clocks.worker_clock(w)).collect();
        let mut expect = [0u64; 4];
        for (w, d) in advances {
            let w = w as usize % 4;
            handles[w].advance(SimDuration::from_nanos(d));
            expect[w] += d;
        }
        let makespan = *expect.iter().max().unwrap();
        prop_assert_eq!(clocks.max_time(), SimTime(makespan));
        prop_assert_eq!(clocks.min_time(), SimTime(*expect.iter().min().unwrap()));

        let t1 = clocks.barrier();
        let t2 = clocks.barrier();
        prop_assert_eq!(t1, t2, "barrier must be idempotent");
        prop_assert_eq!(clocks.min_time(), clocks.max_time());
        prop_assert_eq!(t1, SimTime(makespan));
    }

    /// Per-node makespans bound the cluster makespan.
    #[test]
    fn node_makespans_bound_cluster(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let topo = Topology::new(2, 1);
        let clocks = ClusterClocks::new(topo);
        clocks.worker_clock(WorkerId { node: NodeId(0), local: 0 }).advance(SimDuration(a));
        clocks.worker_clock(WorkerId { node: NodeId(1), local: 0 }).advance(SimDuration(b));
        let n0 = clocks.node_max_time(NodeId(0));
        let n1 = clocks.node_max_time(NodeId(1));
        prop_assert_eq!(clocks.max_time(), n0.max(n1));
    }
}
