//! The per-node store for relocation-managed parameters.
//!
//! Each node holds the keys it currently *owns*. A key is in one of three
//! states at a node:
//!
//! * [`Entry::Local`] — owned here; workers access it through shared memory
//!   under the shard latch.
//! * [`Entry::InFlightIn`] — an ownership transfer *to this node* has been
//!   initiated; operations arriving meanwhile queue on the entry (remote
//!   ones) or block on the shard condvar (local workers) and are served in
//!   arrival order when the transfer installs, preserving per-key
//!   sequential consistency. These waits are real thread parking on every
//!   backend; the virtual backend additionally *charges* the blocked
//!   worker via the entry's availability stamp, while the wall-clock
//!   backend simply lets the block take the time it takes.
//! * [`Entry::ForwardedTo`] — a tombstone left after giving ownership away;
//!   late messages chase the forwarding chain, which always ends at the
//!   current owner or an in-flight entry.
//!
//! Keys absent from the map have never been owned here. The *home* node
//! pre-populates `Local` entries for every key it is home to, so the
//! protocol never routes an operation to a node without an entry (a
//! defensive fallback re-routes via the home node anyway).
//!
//! The paper stresses that NuPS folds the technique check and the locality
//! check into a single latch acquisition (Section 3.2): here the technique
//! check is a lock-free array read and locality is resolved under exactly
//! one shard latch.

use parking_lot::{Condvar, Mutex};
use rustc_hash::FxHashMap;

use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId};

use crate::key::Key;
use crate::messages::KeyUpdate;
use crate::value::add_assign;

/// An operation from a remote node queued on an in-flight entry.
#[derive(Debug, Clone, PartialEq)]
pub enum QueuedOp {
    Pull { reply_to: Addr, hops: u8 },
    Push { delta: Vec<f32>, reply_to: Addr, hops: u8 },
}

/// State of one key at one node.
#[derive(Debug)]
enum Entry {
    Local {
        value: Vec<f32>,
        /// Virtual time at which the value became available here: ZERO for
        /// seeded keys, the transfer's expected completion for installed
        /// ones. Workers racing a real-time install use it so the virtual
        /// charge does not depend on which side of the install they land.
        available_at: SimTime,
    },
    InFlightIn {
        /// Estimated virtual completion time of the inbound transfer, used
        /// to price local waits.
        expected_at: SimTime,
        /// Remote operations to serve on install, in arrival order.
        waiters: Vec<QueuedOp>,
        /// A relocation request that arrived mid-flight: hand the key over
        /// to this node right after installing (at most one can be pending
        /// because the home directory serializes relocations).
        release_to: Option<NodeId>,
    },
    ForwardedTo(NodeId),
    /// Tombstone left when the adaptive manager migrated the key to
    /// replication: the value now lives in every node's replica set. Late
    /// messages that chase a forwarding chain onto this entry are served
    /// from the local replica by the server.
    Promoted,
}

/// Outcome of a local (same-node worker) access attempt.
pub enum LocalAccess<R> {
    /// The key was local; the closure ran under the latch. The time is the
    /// virtual instant the value became available at this node (ZERO for
    /// keys that did not arrive by relocation), so callers can charge a
    /// wait consistent with the in-flight path regardless of real-time
    /// install races.
    Done(R, SimTime),
    /// The key is being relocated here; `expected_at` prices the wait.
    InFlight(SimTime),
    /// The key is elsewhere; `Some(node)` if a tombstone names the owner.
    Remote(Option<NodeId>),
}

/// Outcome of a server-side operation on this store.
pub enum ServerAccess {
    /// Served: for pulls the value copy, for pushes `None`.
    Served(Option<Vec<f32>>),
    /// Queued on an in-flight entry; a reply will be generated at install.
    Queued,
    /// Not owned here; chase the forwarding chain (`Some`) or fall back to
    /// the home node (`None`).
    NotHere(Option<NodeId>),
    /// The key migrated to replication management: serve the operation
    /// from the local replica set instead.
    Migrated,
}

/// Per-entry partition of a batched server-side pull: the locally served
/// subset (answered in one message), the count parked on in-flight entries
/// (answered individually at install time), and the not-here remainder the
/// server forwards along the ownership chain.
#[derive(Debug, Default)]
pub struct PullBatchOutcome {
    /// `(key, value copy)` per served occurrence, in request order.
    pub served: Vec<KeyUpdate>,
    /// Entries queued on in-flight keys.
    pub queued: usize,
    /// Keys to forward, with the tombstone hint when one exists.
    pub not_here: Vec<(Key, Option<NodeId>)>,
    /// Keys that migrated to replication: the server serves them from the
    /// local replica set.
    pub migrated: Vec<Key>,
}

/// Per-entry partition of a batched server-side push.
#[derive(Debug, Default)]
pub struct PushBatchOutcome {
    /// Keys whose delta was applied locally, in request order.
    pub served: Vec<Key>,
    /// Entries queued on in-flight keys.
    pub queued: usize,
    /// Updates to forward, with the tombstone hint when one exists.
    pub not_here: Vec<(KeyUpdate, Option<NodeId>)>,
    /// Updates for keys that migrated to replication: the server applies
    /// them to the local replica set (the delta rides along).
    pub migrated: Vec<KeyUpdate>,
}

/// Outcome of a `ForwardLocalize` (ownership handover request).
pub enum TakeOutcome {
    /// Ownership relinquished; send this value to the requester.
    Taken(Vec<f32>),
    /// The key is in flight to us; the handover will happen on install.
    Deferred,
    /// Not owned here; chase the chain (`Some`) or re-route via home.
    NotHere(Option<NodeId>),
    /// The key migrated to replication: relocation requests are void (the
    /// home server drops new ones; this arm catches stragglers).
    Promoted,
}

/// Outcome of a promotion take ([`Store::begin_promote`]).
pub enum PromoteTake {
    /// Ownership converted to a `Promoted` tombstone; this is the
    /// authoritative value to install into the replica sets.
    Taken(Vec<f32>),
    /// An inbound relocation is still in flight; retry after it installs.
    InFlight,
    /// Not owned here; follow the chain (`Some`) or re-read the directory.
    NotHere(Option<NodeId>),
}

/// Leftovers swept from a node while promoting a key
/// ([`Store::sweep_for_promote`]).
#[derive(Debug, Default)]
pub struct PromoteSweep {
    /// A stale in-flight mark was removed (its localize request was — or
    /// will be — dropped by the home server's migration guard).
    pub removed_inflight: bool,
    /// Operations that were parked on the removed entry, in arrival order.
    /// Empty in every reachable schedule (a queued remote op implies a
    /// worker blocked on the reply, which cannot have reached the
    /// rendezvous); the promoter folds them into the value anyway.
    pub waiters: Vec<QueuedOp>,
}

/// Replies the server must send after an install drained queued waiters.
#[derive(Debug, Default)]
pub struct InstallOutcome {
    /// `(value_copy, reply_to, hops)` for each queued pull, arrival order.
    pub pull_replies: Vec<(Vec<f32>, Addr, u8)>,
    /// `(reply_to, hops)` for each queued push.
    pub push_acks: Vec<(Addr, u8)>,
    /// A handover queued mid-flight: send the value on to this node.
    pub release: Option<(NodeId, Vec<f32>)>,
}

/// Per-position outcome recorded while resolving a batch under shard
/// latches (pulls carry the value copy, pushes carry nothing).
enum BatchSlot {
    Served(Option<Vec<f32>>),
    Queued,
    NotHere(Option<NodeId>),
    Migrated,
}

struct Shard {
    map: Mutex<FxHashMap<Key, Entry>>,
    installed: Condvar,
}

/// Sharded per-node store for relocation-managed keys.
pub struct Store {
    shards: Vec<Shard>,
    shard_mask: usize,
}

#[inline]
fn shard_of(key: Key, mask: usize) -> usize {
    // Multiplicative hash; keys are dense so the low bits alone would put
    // contiguous (co-accessed) keys in the same shard.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & mask
}

impl Store {
    pub fn new(n_shards: usize) -> Store {
        let n = n_shards.next_power_of_two().max(1);
        Store {
            shards: (0..n)
                .map(|_| Shard { map: Mutex::new(FxHashMap::default()), installed: Condvar::new() })
                .collect(),
            shard_mask: n - 1,
        }
    }

    #[inline]
    fn shard(&self, key: Key) -> &Shard {
        &self.shards[shard_of(key, self.shard_mask)]
    }

    /// Pre-populate an owned key (setup: home node seeds its range).
    pub fn seed(&self, key: Key, value: Vec<f32>) {
        let prev = self
            .shard(key)
            .map
            .lock()
            .insert(key, Entry::Local { value, available_at: SimTime::ZERO });
        debug_assert!(prev.is_none(), "key {key} seeded twice");
    }

    /// Worker fast path: run `f` on the value if the key is local.
    pub fn with_local<R>(&self, key: Key, f: impl FnOnce(&mut Vec<f32>) -> R) -> LocalAccess<R> {
        let mut map = self.shard(key).map.lock();
        match map.get_mut(&key) {
            Some(Entry::Local { value, available_at }) => {
                LocalAccess::Done(f(value), *available_at)
            }
            Some(Entry::InFlightIn { expected_at, .. }) => LocalAccess::InFlight(*expected_at),
            Some(Entry::ForwardedTo(n)) => LocalAccess::Remote(Some(*n)),
            // Unreachable from workers (technique flips happen only while
            // every worker is parked); routes via home defensively.
            Some(Entry::Promoted) => LocalAccess::Remote(None),
            None => LocalAccess::Remote(None),
        }
    }

    /// Worker slow path: block until an in-flight key installs, then run
    /// `f`. Returns the closure result together with the installed entry's
    /// `available_at` — the entry may have been re-relocated while the
    /// caller blocked, so the stamp observed *before* the wait can be
    /// stale; callers must charge this one for race-independent virtual
    /// time. Returns `None` if the key was released to another node before
    /// this worker could access it (caller falls back to remote access).
    pub fn wait_local<R>(
        &self,
        key: Key,
        f: impl FnOnce(&mut Vec<f32>) -> R,
    ) -> Option<(R, SimTime)> {
        let shard = self.shard(key);
        let mut map = shard.map.lock();
        loop {
            match map.get_mut(&key) {
                Some(Entry::Local { value, available_at }) => {
                    let at = *available_at;
                    return Some((f(value), at));
                }
                Some(Entry::InFlightIn { .. }) => shard.installed.wait(&mut map),
                _ => return None,
            }
        }
    }

    /// True if the key is currently owned here (used by sampling schemes;
    /// in-flight does not count as local).
    pub fn is_local(&self, key: Key) -> bool {
        matches!(self.shard(key).map.lock().get(&key), Some(Entry::Local { .. }))
    }

    /// True while an inbound relocation of `key` is marked here. The
    /// adaptive manager polls this across all nodes to wait for
    /// relocation quiescence before promoting a key: a mark exists from
    /// the moment a worker issues the localize until the transfer
    /// installs, so "no marks anywhere" proves no relocation traffic for
    /// the key remains in flight.
    pub fn is_inflight(&self, key: Key) -> bool {
        matches!(self.shard(key).map.lock().get(&key), Some(Entry::InFlightIn { .. }))
    }

    /// Begin an inbound relocation: transition Remote/Forwarded → InFlight.
    /// Returns `false` when the key is already local or already in flight
    /// (localize is then a no-op, as in Lapse).
    pub fn mark_inflight(&self, key: Key, expected_at: SimTime) -> bool {
        let mut map = self.shard(key).map.lock();
        match map.get(&key) {
            Some(Entry::Local { .. }) | Some(Entry::InFlightIn { .. }) | Some(Entry::Promoted) => {
                false
            }
            _ => {
                map.insert(
                    key,
                    Entry::InFlightIn { expected_at, waiters: Vec::new(), release_to: None },
                );
                true
            }
        }
    }

    /// Server-side pull.
    pub fn server_pull(&self, key: Key, reply_to: Addr, hops: u8) -> ServerAccess {
        let mut map = self.shard(key).map.lock();
        match map.get_mut(&key) {
            Some(Entry::Local { value, .. }) => ServerAccess::Served(Some(value.clone())),
            Some(Entry::InFlightIn { waiters, .. }) => {
                waiters.push(QueuedOp::Pull { reply_to, hops });
                ServerAccess::Queued
            }
            Some(Entry::ForwardedTo(n)) => ServerAccess::NotHere(Some(*n)),
            Some(Entry::Promoted) => ServerAccess::Migrated,
            None => ServerAccess::NotHere(None),
        }
    }

    /// Server-side push (additive delta). Borrows the delta so the served
    /// fast path copies nothing; ownership is only taken when the entry is
    /// in flight and the delta must be parked until install.
    pub fn server_push(&self, key: Key, delta: &[f32], reply_to: Addr, hops: u8) -> ServerAccess {
        let mut map = self.shard(key).map.lock();
        match map.get_mut(&key) {
            Some(Entry::Local { value, .. }) => {
                add_assign(value, delta);
                ServerAccess::Served(None)
            }
            Some(Entry::InFlightIn { waiters, .. }) => {
                waiters.push(QueuedOp::Push { delta: delta.to_vec(), reply_to, hops });
                ServerAccess::Queued
            }
            Some(Entry::ForwardedTo(n)) => ServerAccess::NotHere(Some(*n)),
            Some(Entry::Promoted) => ServerAccess::Migrated,
            None => ServerAccess::NotHere(None),
        }
    }

    /// Resolve a batch of keys in one pass: positions are grouped by shard
    /// so each shard latch is taken once for all of its keys instead of
    /// once per key. `f` runs under the owning shard's latch; results come
    /// back in request order (grouping is an implementation detail).
    fn resolve_batch<R>(
        &self,
        keys: &[Key],
        mut f: impl FnMut(&mut FxHashMap<Key, Entry>, Key, usize) -> R,
    ) -> Vec<Option<R>> {
        let mut order: Vec<(usize, usize)> =
            keys.iter().enumerate().map(|(i, &k)| (shard_of(k, self.shard_mask), i)).collect();
        order.sort_unstable();
        let mut results: Vec<Option<R>> = keys.iter().map(|_| None).collect();
        let mut pos = 0;
        while pos < order.len() {
            let shard = order[pos].0;
            let mut map = self.shards[shard].map.lock();
            while let Some(&(s, i)) = order.get(pos) {
                if s != shard {
                    break;
                }
                results[i] = Some(f(&mut map, keys[i], i));
                pos += 1;
            }
        }
        results
    }

    /// Batched server-side pull: serve the locally-owned subset under one
    /// pass, queue entries on in-flight keys, and report the not-here
    /// remainder for forwarding. Outcomes are in request order.
    pub fn server_pull_batch(&self, keys: &[Key], reply_to: Addr, hops: u8) -> PullBatchOutcome {
        let mut out = PullBatchOutcome::default();
        let slots = self.resolve_batch(keys, |map, key, _| match map.get_mut(&key) {
            Some(Entry::Local { value, .. }) => BatchSlot::Served(Some(value.clone())),
            Some(Entry::InFlightIn { waiters, .. }) => {
                waiters.push(QueuedOp::Pull { reply_to, hops });
                BatchSlot::Queued
            }
            Some(Entry::ForwardedTo(n)) => BatchSlot::NotHere(Some(*n)),
            Some(Entry::Promoted) => BatchSlot::Migrated,
            None => BatchSlot::NotHere(None),
        });
        for (slot, &key) in slots.into_iter().zip(keys) {
            match slot.expect("every position resolved") {
                BatchSlot::Served(value) => {
                    out.served.push(KeyUpdate { key, delta: value.expect("pull has a value") });
                }
                BatchSlot::Queued => out.queued += 1,
                BatchSlot::NotHere(hint) => out.not_here.push((key, hint)),
                BatchSlot::Migrated => out.migrated.push(key),
            }
        }
        out
    }

    /// Batched server-side push; same one-pass sharding as
    /// [`Store::server_pull_batch`]. Deltas are copied only for queued
    /// entries; forwarded entries move out of `updates` unchanged.
    pub fn server_push_batch(
        &self,
        updates: Vec<KeyUpdate>,
        reply_to: Addr,
        hops: u8,
    ) -> PushBatchOutcome {
        let keys: Vec<Key> = updates.iter().map(|u| u.key).collect();
        let mut deltas: Vec<Option<Vec<f32>>> =
            updates.into_iter().map(|u| Some(u.delta)).collect();
        let slots = self.resolve_batch(&keys, |map, key, i| {
            let delta = deltas[i].as_deref().expect("each position visited once");
            match map.get_mut(&key) {
                Some(Entry::Local { value, .. }) => {
                    add_assign(value, delta);
                    BatchSlot::Served(None)
                }
                Some(Entry::InFlightIn { waiters, .. }) => {
                    waiters.push(QueuedOp::Push { delta: delta.to_vec(), reply_to, hops });
                    BatchSlot::Queued
                }
                Some(Entry::ForwardedTo(n)) => BatchSlot::NotHere(Some(*n)),
                Some(Entry::Promoted) => BatchSlot::Migrated,
                None => BatchSlot::NotHere(None),
            }
        });
        let mut out = PushBatchOutcome::default();
        for (i, (slot, key)) in slots.into_iter().zip(keys).enumerate() {
            match slot.expect("every position resolved") {
                BatchSlot::Served(_) => out.served.push(key),
                BatchSlot::Queued => out.queued += 1,
                BatchSlot::NotHere(hint) => {
                    let delta = deltas[i].take().expect("delta consumed twice");
                    out.not_here.push((KeyUpdate { key, delta }, hint));
                }
                BatchSlot::Migrated => {
                    let delta = deltas[i].take().expect("delta consumed twice");
                    out.migrated.push(KeyUpdate { key, delta });
                }
            }
        }
        out
    }

    /// Handle a `ForwardLocalize`: relinquish ownership to `requester`.
    pub fn take_for_transfer(&self, key: Key, requester: NodeId) -> TakeOutcome {
        let mut map = self.shard(key).map.lock();
        match map.get_mut(&key) {
            Some(entry @ Entry::Local { .. }) => {
                let Entry::Local { value, .. } =
                    std::mem::replace(entry, Entry::ForwardedTo(requester))
                else {
                    unreachable!()
                };
                TakeOutcome::Taken(value)
            }
            Some(Entry::InFlightIn { release_to, .. }) => {
                debug_assert!(
                    release_to.is_none(),
                    "home directory must serialize relocations of one key"
                );
                *release_to = Some(requester);
                TakeOutcome::Deferred
            }
            Some(Entry::ForwardedTo(n)) => TakeOutcome::NotHere(Some(*n)),
            Some(Entry::Promoted) => TakeOutcome::Promoted,
            None => TakeOutcome::NotHere(None),
        }
    }

    /// Promotion take: convert local ownership into a `Promoted` tombstone
    /// and hand the authoritative value to the adaptive manager. Runs at a
    /// synchronization rendezvous; a racing relocation reports `InFlight`
    /// or `NotHere` and the promoter retries after re-reading the home
    /// directory.
    pub fn begin_promote(&self, key: Key) -> PromoteTake {
        let mut map = self.shard(key).map.lock();
        match map.get_mut(&key) {
            Some(entry @ Entry::Local { .. }) => {
                let Entry::Local { value, .. } = std::mem::replace(entry, Entry::Promoted) else {
                    unreachable!()
                };
                PromoteTake::Taken(value)
            }
            Some(Entry::InFlightIn { .. }) => PromoteTake::InFlight,
            Some(Entry::ForwardedTo(n)) => PromoteTake::NotHere(Some(*n)),
            Some(Entry::Promoted) => {
                debug_assert!(false, "key {key} promoted twice");
                PromoteTake::NotHere(None)
            }
            None => PromoteTake::NotHere(None),
        }
    }

    /// Post-take sweep on every non-owning node: remove a stale in-flight
    /// mark whose localize request the home server's migration guard
    /// dropped (or will drop) — left in place it would later read as a
    /// transfer that never arrives and block a worker forever. Any parked
    /// operations are returned so the promoter can serve them from the
    /// taken value, exactly once.
    pub fn sweep_for_promote(&self, key: Key) -> PromoteSweep {
        let shard = self.shard(key);
        let mut map = shard.map.lock();
        let mut out = PromoteSweep::default();
        if let Some(Entry::InFlightIn { .. }) = map.get(&key) {
            let Some(Entry::InFlightIn { waiters, .. }) = map.remove(&key) else { unreachable!() };
            out.removed_inflight = true;
            out.waiters = waiters;
        }
        drop(map);
        if out.removed_inflight {
            // Anyone blocked in `wait_local` re-checks and falls back.
            shard.installed.notify_all();
        }
        out
    }

    /// Demotion install at the elected owner: force local ownership with
    /// the collapsed replica value, replacing a `Promoted` tombstone (or
    /// creating the entry for a key that was replicated from the start).
    pub fn install_demoted(&self, key: Key, value: Vec<f32>, available_at: SimTime) {
        let shard = self.shard(key);
        let mut map = shard.map.lock();
        let prev = map.insert(key, Entry::Local { value, available_at });
        debug_assert!(
            !matches!(prev, Some(Entry::Local { .. }) | Some(Entry::InFlightIn { .. })),
            "demotion install of key {key} clobbered live state"
        );
        drop(map);
        shard.installed.notify_all();
    }

    /// Demotion redirect on every non-owning node: point any existing
    /// tombstone (`Promoted` from the promotion, or an old `ForwardedTo`
    /// chain link) at the newly elected owner so late-chasing messages
    /// terminate there. Nodes without an entry stay entry-less (they route
    /// via the home directory, which the demotion also resets).
    pub fn redirect_for_demote(&self, key: Key, owner: NodeId) {
        let mut map = self.shard(key).map.lock();
        if let Some(entry) = map.get_mut(&key) {
            debug_assert!(
                !matches!(entry, Entry::Local { .. } | Entry::InFlightIn { .. }),
                "demotion redirect of key {key} clobbered live state"
            );
            *entry = Entry::ForwardedTo(owner);
        }
    }

    /// Install an inbound transfer: serve queued waiters in arrival order,
    /// then either keep the key (waking blocked local workers) or hand it
    /// straight on if a release was queued mid-flight.
    pub fn install(&self, key: Key, mut value: Vec<f32>) -> InstallOutcome {
        let shard = self.shard(key);
        let mut map = shard.map.lock();
        let mut out = InstallOutcome::default();
        let (waiters, release_to, available_at) = match map.get(&key) {
            Some(Entry::InFlightIn { .. }) => {
                let Some(Entry::InFlightIn { waiters, release_to, expected_at }) = map.remove(&key)
                else {
                    unreachable!()
                };
                (waiters, release_to, expected_at)
            }
            // A duplicate or stale transfer for a key we already hold (or
            // already handed on): keep the existing entry and drop the
            // stale value. Installing it would silently discard every push
            // applied since the first install.
            Some(_) => return out,
            // Never owned here and not expected either; adopt the value
            // defensively so it is not lost.
            None => (Vec::new(), None, SimTime::ZERO),
        };
        for op in waiters {
            match op {
                QueuedOp::Pull { reply_to, hops } => {
                    out.pull_replies.push((value.clone(), reply_to, hops));
                }
                QueuedOp::Push { delta, reply_to, hops } => {
                    add_assign(&mut value, &delta);
                    out.push_acks.push((reply_to, hops));
                }
            }
        }
        match release_to {
            Some(node) => {
                map.insert(key, Entry::ForwardedTo(node));
                out.release = Some((node, value));
            }
            None => {
                map.insert(key, Entry::Local { value, available_at });
            }
        }
        drop(map);
        shard.installed.notify_all();
        out
    }

    /// Copy of the value if local (evaluation / tests).
    pub fn get(&self, key: Key) -> Option<Vec<f32>> {
        let map = self.shard(key).map.lock();
        match map.get(&key) {
            Some(Entry::Local { value, .. }) => Some(value.clone()),
            _ => None,
        }
    }

    /// All locally owned keys (evaluation; O(owned)).
    pub fn local_keys(&self) -> Vec<Key> {
        let mut out = Vec::new();
        for s in &self.shards {
            let map = s.map.lock();
            out.extend(
                map.iter().filter_map(|(k, e)| matches!(e, Entry::Local { .. }).then_some(*k)),
            );
        }
        out
    }

    /// Number of keys currently marked in flight *toward* this node: an
    /// issued localize whose transfer has not installed yet. Per-node
    /// deployments wait for this to reach zero before contributing their
    /// share of the final model (a key mid-relocation is owned by nobody).
    pub fn n_inflight(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map.lock().values().filter(|e| matches!(e, Entry::InFlightIn { .. })).count()
            })
            .sum()
    }

    /// Number of locally owned keys.
    pub fn n_local(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().values().filter(|e| matches!(e, Entry::Local { .. })).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u16) -> Addr {
        Addr::worker(NodeId(n), 0)
    }

    #[test]
    fn seed_and_local_access() {
        let s = Store::new(4);
        s.seed(7, vec![1.0, 2.0]);
        match s.with_local(7, |v| {
            v[0] += 1.0;
            v[0]
        }) {
            LocalAccess::Done(x, at) => {
                assert_eq!(x, 2.0);
                assert_eq!(at, SimTime::ZERO, "seeded keys are available from the start");
            }
            _ => panic!("expected local"),
        }
        assert_eq!(s.get(7), Some(vec![2.0, 2.0]));
        assert!(s.is_local(7));
        assert!(!s.is_local(8));
        assert!(matches!(s.with_local(8, |_| ()), LocalAccess::Remote(None)));
    }

    #[test]
    fn inflight_queues_remote_ops_and_serves_in_order() {
        let s = Store::new(4);
        assert!(s.mark_inflight(1, SimTime(500)));
        assert!(!s.mark_inflight(1, SimTime(900)), "double mark must no-op");
        // Remote push then pull queue up.
        assert!(matches!(s.server_push(1, &[10.0], addr(2), 2), ServerAccess::Queued));
        assert!(matches!(s.server_pull(1, addr(3), 2), ServerAccess::Queued));
        let out = s.install(1, vec![1.0]);
        // Push applied before the later pull sees the value.
        assert_eq!(out.push_acks.len(), 1);
        assert_eq!(out.pull_replies.len(), 1);
        assert_eq!(out.pull_replies[0].0, vec![11.0]);
        assert!(out.release.is_none());
        assert_eq!(s.get(1), Some(vec![11.0]));
        // The installed entry reports the transfer's expected completion.
        match s.with_local(1, |_| ()) {
            LocalAccess::Done((), at) => assert_eq!(at, SimTime(500)),
            _ => panic!("expected local after install"),
        }
    }

    #[test]
    fn pull_before_push_sees_old_value() {
        let s = Store::new(4);
        s.mark_inflight(1, SimTime(0));
        assert!(matches!(s.server_pull(1, addr(3), 2), ServerAccess::Queued));
        assert!(matches!(s.server_push(1, &[5.0], addr(2), 2), ServerAccess::Queued));
        let out = s.install(1, vec![1.0]);
        assert_eq!(out.pull_replies[0].0, vec![1.0], "queued pull precedes queued push");
        assert_eq!(s.get(1), Some(vec![6.0]));
    }

    #[test]
    fn take_for_transfer_leaves_tombstone() {
        let s = Store::new(4);
        s.seed(1, vec![3.0]);
        match s.take_for_transfer(1, NodeId(5)) {
            TakeOutcome::Taken(v) => assert_eq!(v, vec![3.0]),
            _ => panic!(),
        }
        assert!(!s.is_local(1));
        match s.with_local(1, |_| ()) {
            LocalAccess::Remote(Some(n)) => assert_eq!(n, NodeId(5)),
            _ => panic!("expected tombstone"),
        }
        // Ops now chase the tombstone.
        assert!(matches!(s.server_pull(1, addr(0), 2), ServerAccess::NotHere(Some(NodeId(5)))));
    }

    #[test]
    fn release_queued_mid_flight_hands_over_after_install() {
        let s = Store::new(4);
        s.mark_inflight(1, SimTime(0));
        assert!(matches!(s.take_for_transfer(1, NodeId(9)), TakeOutcome::Deferred));
        let out = s.install(1, vec![4.0]);
        let (node, v) = out.release.expect("release queued");
        assert_eq!(node, NodeId(9));
        assert_eq!(v, vec![4.0]);
        // We keep only a tombstone.
        assert!(!s.is_local(1));
        assert!(matches!(s.with_local(1, |_| ()), LocalAccess::Remote(Some(NodeId(9)))));
    }

    #[test]
    fn wait_local_blocks_until_install() {
        let s = std::sync::Arc::new(Store::new(2));
        s.mark_inflight(1, SimTime(70));
        let s2 = std::sync::Arc::clone(&s);
        let t = std::thread::spawn(move || s2.wait_local(1, |v| v[0]));
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.install(1, vec![42.0]);
        // The waiter sees the value and the *installed* availability stamp.
        assert_eq!(t.join().unwrap(), Some((42.0, SimTime(70))));
    }

    #[test]
    fn wait_local_gives_up_when_released_away() {
        let s = std::sync::Arc::new(Store::new(2));
        s.mark_inflight(1, SimTime(0));
        assert!(matches!(s.take_for_transfer(1, NodeId(3)), TakeOutcome::Deferred));
        let s2 = std::sync::Arc::clone(&s);
        let t = std::thread::spawn(move || s2.wait_local(1, |v| v[0]));
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.install(1, vec![42.0]);
        // Key was immediately handed to node 3: waiter must fall back.
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn local_keys_enumeration() {
        let s = Store::new(8);
        for k in 0..100 {
            s.seed(k, vec![k as f32]);
        }
        s.take_for_transfer(50, NodeId(1));
        let mut keys = s.local_keys();
        keys.sort_unstable();
        assert_eq!(keys.len(), 99);
        assert!(!keys.contains(&50));
        assert_eq!(s.n_local(), 99);
    }

    #[test]
    fn stale_duplicate_transfer_does_not_clobber_local_entry() {
        // Regression: a duplicate/stale Transfer for a key that already
        // installed must not overwrite the Local entry — pushes applied
        // since the first install would be silently discarded.
        let s = Store::new(4);
        s.mark_inflight(1, SimTime(100));
        s.install(1, vec![1.0]);
        // A worker pushes onto the installed entry...
        assert!(matches!(s.with_local(1, |v| v[0] += 5.0), LocalAccess::Done(_, _)));
        // ...then a spurious duplicate of the transfer arrives.
        let out = s.install(1, vec![1.0]);
        assert!(out.pull_replies.is_empty() && out.push_acks.is_empty());
        assert!(out.release.is_none());
        assert_eq!(s.get(1), Some(vec![6.0]), "push must survive the duplicate transfer");
        match s.with_local(1, |_| ()) {
            LocalAccess::Done((), at) => assert_eq!(at, SimTime(100), "stamp kept too"),
            _ => panic!("entry must stay local"),
        }
    }

    #[test]
    fn stale_transfer_after_handover_keeps_tombstone() {
        let s = Store::new(4);
        s.seed(1, vec![2.0]);
        assert!(matches!(s.take_for_transfer(1, NodeId(5)), TakeOutcome::Taken(_)));
        // A transfer re-delivered after the key moved on must not resurrect
        // local ownership here — the chain would fork.
        let out = s.install(1, vec![9.0]);
        assert!(out.pull_replies.is_empty() && out.release.is_none());
        assert!(matches!(s.with_local(1, |_| ()), LocalAccess::Remote(Some(NodeId(5)))));
    }

    #[test]
    fn batch_pull_partitions_served_queued_not_here() {
        let s = Store::new(4);
        s.seed(1, vec![1.0]);
        s.seed(2, vec![2.0]);
        s.take_for_transfer(2, NodeId(7)); // 2 → tombstone
        s.mark_inflight(3, SimTime(10));
        let out = s.server_pull_batch(&[1, 2, 3, 4, 1], addr(9), 1);
        // Served entries keep request order, duplicates served per occurrence.
        assert_eq!(out.served.len(), 2);
        assert_eq!((out.served[0].key, out.served[0].delta.clone()), (1, vec![1.0]));
        assert_eq!(out.served[1].key, 1);
        assert_eq!(out.queued, 1);
        assert_eq!(out.not_here, vec![(2, Some(NodeId(7))), (4, None)]);
        // The queued entry answers at install time.
        let io = s.install(3, vec![30.0]);
        assert_eq!(io.pull_replies.len(), 1);
        assert_eq!(io.pull_replies[0].0, vec![30.0]);
    }

    #[test]
    fn batch_push_applies_locally_and_forwards_rest() {
        let s = Store::new(4);
        s.seed(1, vec![1.0]);
        s.mark_inflight(3, SimTime(10));
        let updates = vec![
            KeyUpdate { key: 1, delta: vec![0.5] },
            KeyUpdate { key: 3, delta: vec![9.0] },
            KeyUpdate { key: 4, delta: vec![7.0] },
            KeyUpdate { key: 1, delta: vec![0.25] },
        ];
        let out = s.server_push_batch(updates, addr(9), 1);
        assert_eq!(out.served, vec![1, 1], "both occurrences applied");
        assert_eq!(out.queued, 1);
        assert_eq!(out.not_here.len(), 1);
        assert_eq!(out.not_here[0].0, KeyUpdate { key: 4, delta: vec![7.0] });
        assert_eq!(out.not_here[0].1, None);
        assert_eq!(s.get(1), Some(vec![1.75]));
        // The queued push lands at install.
        let io = s.install(3, vec![1.0]);
        assert_eq!(io.push_acks.len(), 1);
        assert_eq!(s.get(3), Some(vec![10.0]));
    }

    #[test]
    fn begin_promote_takes_value_and_leaves_tombstone() {
        let s = Store::new(4);
        s.seed(1, vec![3.0]);
        match s.begin_promote(1) {
            PromoteTake::Taken(v) => assert_eq!(v, vec![3.0]),
            _ => panic!("expected take"),
        }
        assert!(!s.is_local(1));
        // Server ops now report the migration so they are served from the
        // replica set; relocation stragglers are void.
        assert!(matches!(s.server_pull(1, addr(0), 2), ServerAccess::Migrated));
        assert!(matches!(s.server_push(1, &[1.0], addr(0), 2), ServerAccess::Migrated));
        assert!(matches!(s.take_for_transfer(1, NodeId(5)), TakeOutcome::Promoted));
        // A localize must not clobber the tombstone.
        assert!(!s.mark_inflight(1, SimTime(5)));
        // Nor may a stale duplicate transfer resurrect local ownership.
        let out = s.install(1, vec![9.0]);
        assert!(out.pull_replies.is_empty() && out.release.is_none());
        assert!(matches!(s.server_pull(1, addr(0), 2), ServerAccess::Migrated));
    }

    #[test]
    fn begin_promote_reports_inflight_and_chains() {
        let s = Store::new(4);
        s.mark_inflight(1, SimTime(10));
        assert!(matches!(s.begin_promote(1), PromoteTake::InFlight));
        s.install(1, vec![2.0]);
        assert!(matches!(s.begin_promote(1), PromoteTake::Taken(_)));
        let t = Store::new(4);
        t.seed(2, vec![0.0]);
        t.take_for_transfer(2, NodeId(3));
        assert!(matches!(t.begin_promote(2), PromoteTake::NotHere(Some(NodeId(3)))));
        assert!(matches!(t.begin_promote(9), PromoteTake::NotHere(None)));
    }

    #[test]
    fn sweep_for_promote_clears_stale_inflight_marks() {
        let s = Store::new(4);
        s.mark_inflight(1, SimTime(10));
        let sw = s.sweep_for_promote(1);
        assert!(sw.removed_inflight);
        assert!(sw.waiters.is_empty());
        assert!(matches!(s.with_local(1, |_| ()), LocalAccess::Remote(None)));
        // Sweeping a node without an entry (or with a tombstone) is a no-op.
        assert!(!s.sweep_for_promote(1).removed_inflight);
        s.seed(2, vec![1.0]);
        s.take_for_transfer(2, NodeId(7));
        assert!(!s.sweep_for_promote(2).removed_inflight);
        assert!(matches!(s.with_local(2, |_| ()), LocalAccess::Remote(Some(NodeId(7)))));
    }

    #[test]
    fn sweep_for_promote_returns_parked_ops() {
        let s = Store::new(4);
        s.mark_inflight(1, SimTime(10));
        s.server_push(1, &[4.0], addr(2), 2);
        let sw = s.sweep_for_promote(1);
        assert!(sw.removed_inflight);
        assert_eq!(sw.waiters.len(), 1, "parked push handed to the promoter");
    }

    #[test]
    fn demotion_installs_owner_and_redirects_tombstones() {
        let owner = Store::new(4);
        let other = Store::new(4);
        // Key 1 was promoted earlier: tombstone at the old owner, a chain
        // link elsewhere, nothing at a third node.
        owner.seed(1, vec![0.0]);
        let PromoteTake::Taken(_) = owner.begin_promote(1) else { panic!() };
        other.seed(1, vec![0.0]);
        other.take_for_transfer(1, NodeId(0));

        owner.install_demoted(1, vec![8.0], SimTime(99));
        other.redirect_for_demote(1, NodeId(0));
        assert_eq!(owner.get(1), Some(vec![8.0]));
        match owner.with_local(1, |_| ()) {
            LocalAccess::Done((), at) => assert_eq!(at, SimTime(99)),
            _ => panic!("owner must hold the key locally"),
        }
        assert!(matches!(other.with_local(1, |_| ()), LocalAccess::Remote(Some(NodeId(0)))));
        // A node that never held the key needs no redirect.
        let third = Store::new(4);
        third.redirect_for_demote(1, NodeId(0));
        assert!(matches!(third.with_local(1, |_| ()), LocalAccess::Remote(None)));
    }

    #[test]
    fn batch_ops_partition_migrated_keys() {
        let s = Store::new(4);
        s.seed(1, vec![1.0]);
        s.seed(2, vec![2.0]);
        let PromoteTake::Taken(_) = s.begin_promote(2) else { panic!() };
        let out = s.server_pull_batch(&[1, 2, 3], addr(9), 1);
        assert_eq!(out.served.len(), 1);
        assert_eq!(out.migrated, vec![2]);
        assert_eq!(out.not_here, vec![(3, None)]);
        let updates =
            vec![KeyUpdate { key: 1, delta: vec![0.5] }, KeyUpdate { key: 2, delta: vec![9.0] }];
        let out = s.server_push_batch(updates, addr(9), 1);
        assert_eq!(out.served, vec![1]);
        assert_eq!(out.migrated, vec![KeyUpdate { key: 2, delta: vec![9.0] }]);
    }

    #[test]
    fn concurrent_local_increments_are_exact() {
        // Per-key sequential consistency on the shared-memory path: all
        // increments from many threads must be applied exactly once.
        let s = std::sync::Arc::new(Store::new(4));
        s.seed(0, vec![0.0]);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.with_local(0, |v| v[0] += 1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.get(0), Some(vec![8000.0]));
    }
}
