//! Scaled-down criterion entry points for every figure and table of the
//! paper, so `cargo bench` regenerates each experiment's machinery end to
//! end at tiny scale. Full-resolution runs (more epochs, larger datasets,
//! all variants) live in the `src/bin/fig*` harnesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nups_bench::variant::SyncSetting;
use nups_bench::{build_task, run, RunConfig, Scale, TaskKind, VariantSpec};
use nups_sim::topology::Topology;

const TOPO: Topology = Topology { n_nodes: 2, workers_per_node: 2 };

fn cfg() -> RunConfig {
    RunConfig::new(TOPO, 1)
}

fn bench_one(c: &mut Criterion, group: &str, kind: TaskKind, variants: Vec<VariantSpec>) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    let factory = move |topo| build_task(kind, Scale::Tiny, topo);
    for v in variants {
        g.bench_function(BenchmarkId::new(kind.name(), &v.name), |b| {
            b.iter(|| run(&factory, &v, &cfg()))
        });
    }
    g.finish();
}

/// Figures 1 & 6: end-to-end systems comparison (one epoch, tiny scale).
fn fig6(c: &mut Criterion) {
    for kind in TaskKind::all() {
        bench_one(
            c,
            "fig6_end_to_end",
            kind,
            vec![
                VariantSpec::single_node(),
                VariantSpec::classic(),
                VariantSpec::petuum_essp(10),
                VariantSpec::lapse(),
                VariantSpec::nups_untuned(),
            ],
        );
    }
}

/// Figure 7: ablation variants.
fn fig7(c: &mut Criterion) {
    bench_one(
        c,
        "fig7_ablation",
        TaskKind::Kge,
        vec![
            VariantSpec::ablation_relocation_replication(),
            VariantSpec::ablation_relocation_sampling(),
        ],
    );
}

/// Figures 8/9: scalability (node-count sweep at one epoch).
fn fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_scalability");
    g.sample_size(10);
    let factory = move |topo| build_task(TaskKind::Kge, Scale::Tiny, topo);
    for nodes in [1u16, 2, 4] {
        g.bench_function(BenchmarkId::new("nups_untuned", nodes), |b| {
            b.iter(|| {
                let cfg = RunConfig::new(Topology::new(nodes, 2), 1);
                run(&factory, &VariantSpec::nups_untuned(), &cfg)
            })
        });
    }
    g.finish();
}

/// Figure 10: sampling schemes.
fn fig10(c: &mut Criterion) {
    bench_one(c, "fig10_sampling_schemes", TaskKind::Kge, VariantSpec::scheme_ladder());
}

/// Figure 11 / Table 3: replication-factor sweep.
fn fig11(c: &mut Criterion) {
    bench_one(
        c,
        "fig11_technique_choice",
        TaskKind::Kge,
        vec![
            VariantSpec::nups_replication_factor(0.0),
            VariantSpec::nups_replication_factor(1.0),
            VariantSpec::nups_replication_factor(64.0),
        ],
    );
}

/// Figure 12: staleness sweep.
fn fig12(c: &mut Criterion) {
    bench_one(
        c,
        "fig12_staleness",
        TaskKind::Kge,
        vec![
            VariantSpec::nups_sync(SyncSetting::PerSecond(125.0)),
            VariantSpec::nups_sync(SyncSetting::PerSecond(1.0)),
            VariantSpec::nups_sync(SyncSetting::Never),
        ],
    );
}

criterion_group!(figures, fig6, fig7, fig8, fig10, fig11, fig12);
criterion_main!(figures);
