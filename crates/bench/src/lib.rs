//! # nups-bench — the experiment harness
//!
//! Reproduces every table and figure of the NuPS paper's evaluation
//! (Section 5). The pieces:
//!
//! * [`variant`] — the system variants compared (single node, Classic,
//!   Petuum SSP/ESSP, Lapse, NuPS untuned/tuned, ablations, sweeps).
//! * [`tasks`] — task builders at tiny/small/medium scales.
//! * [`runner`] — builds a variant, drives epochs, records
//!   quality-over-virtual-time plus all counters.
//! * [`report`] — raw/effective speedups and table printing.
//! * [`args`] — `--key value` flags for the experiment binaries.
//!
//! Each figure/table has a binary under `src/bin/` (see DESIGN.md's
//! per-experiment index) and a scaled-down criterion bench under
//! `benches/`.

pub mod args;
pub mod baremetal;
pub mod drift_bench;
pub mod json;
pub mod report;
pub mod runner;
pub mod tasks;
pub mod variant;

pub use args::Args;
pub use runner::{run, run_all, RunConfig, RunResult};
pub use tasks::{build_task, Scale, TaskKind};
pub use variant::{NupsVariant, SyncSetting, VariantKind, VariantSpec};
