//! The system variants compared throughout the paper's evaluation.

use nups_core::adaptive::AdaptiveConfig;
use nups_core::sampling::scheme::{ReuseParams, SamplingScheme};
use nups_core::ssp::SspProtocol;
use nups_sim::time::SimDuration;

/// How replica synchronization is scheduled (Figure 12 sweeps this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncSetting {
    /// The paper's default 40 ms staleness bound (25 syncs/s).
    Default,
    /// A target frequency in synchronizations per (virtual) second.
    PerSecond(f64),
    /// No synchronization at all (replicas drift for the whole run).
    Never,
}

impl SyncSetting {
    pub fn period(self) -> SimDuration {
        match self {
            SyncSetting::Default => SimDuration::from_millis(40),
            SyncSetting::PerSecond(f) => SimDuration::from_secs_f64(1.0 / f.max(1e-9)),
            // "Never" is a period far beyond any experiment's budget.
            SyncSetting::Never => SimDuration::from_secs(1 << 40),
        }
    }
}

/// Configuration knobs for a NuPS-engine variant (NuPS itself, Lapse,
/// Classic and the single-node baseline all run on the same engine).
#[derive(Debug, Clone)]
pub struct NupsVariant {
    /// Force a single-node topology regardless of the experiment's cluster.
    pub force_single_node: bool,
    /// Relocation on (off = Classic).
    pub relocation: bool,
    /// Number of replicated keys = `factor ×` the untuned heuristic's
    /// choice (Section 5.6 sweeps 0, 1/64 … 256), unless overridden.
    pub replication_factor: f64,
    pub replicated_count: Option<usize>,
    /// Sampling scheme override; `None` lets the sampling manager pick
    /// from each distribution's conformity level.
    pub scheme: Option<SamplingScheme>,
    pub sync: SyncSetting,
    /// Apply the task's gradient-clip policy to replicated keys.
    pub clip: bool,
    /// Adaptive technique management (`None` = the paper's static
    /// pre-training assignment).
    pub adaptive: Option<AdaptiveConfig>,
}

impl Default for NupsVariant {
    fn default() -> NupsVariant {
        NupsVariant {
            force_single_node: false,
            relocation: true,
            replication_factor: 1.0,
            replicated_count: None,
            scheme: None,
            sync: SyncSetting::Default,
            clip: true,
            adaptive: None,
        }
    }
}

/// A named system variant.
#[derive(Debug, Clone)]
pub struct VariantSpec {
    pub name: String,
    pub kind: VariantKind,
}

#[derive(Debug, Clone)]
pub enum VariantKind {
    Nups(NupsVariant),
    Ssp { protocol: SspProtocol, staleness: u64 },
}

impl VariantSpec {
    fn nups(name: &str, v: NupsVariant) -> VariantSpec {
        VariantSpec { name: name.to_string(), kind: VariantKind::Nups(v) }
    }

    /// The paper's shared-memory single-node baseline.
    pub fn single_node() -> VariantSpec {
        Self::nups(
            "Single node",
            NupsVariant {
                force_single_node: true,
                replication_factor: 0.0,
                scheme: Some(SamplingScheme::Manual),
                ..NupsVariant::default()
            },
        )
    }

    /// Classic PS: static allocation, no replication, manual sampling.
    pub fn classic() -> VariantSpec {
        Self::nups(
            "Classic",
            NupsVariant {
                relocation: false,
                replication_factor: 0.0,
                scheme: Some(SamplingScheme::Manual),
                ..NupsVariant::default()
            },
        )
    }

    /// Lapse: relocation-only, manual sampling.
    pub fn lapse() -> VariantSpec {
        Self::nups(
            "Lapse",
            NupsVariant {
                replication_factor: 0.0,
                scheme: Some(SamplingScheme::Manual),
                ..NupsVariant::default()
            },
        )
    }

    /// Petuum with the SSP protocol.
    pub fn petuum_ssp(staleness: u64) -> VariantSpec {
        VariantSpec {
            name: format!("Petuum (SSP, s={staleness})"),
            kind: VariantKind::Ssp { protocol: SspProtocol::Ssp, staleness },
        }
    }

    /// Petuum with the ESSP protocol.
    pub fn petuum_essp(staleness: u64) -> VariantSpec {
        VariantSpec {
            name: format!("Petuum (ESSP, s={staleness})"),
            kind: VariantKind::Ssp { protocol: SspProtocol::Essp, staleness },
        }
    }

    /// NuPS untuned (Section 5.1): heuristic replication, sample reuse
    /// U=16 via the manager (tasks register BOUNDED distributions).
    pub fn nups_untuned() -> VariantSpec {
        Self::nups("NuPS (untuned)", NupsVariant::default())
    }

    /// NuPS tuned per task (Section 5.1): KGE keeps the heuristic's keys
    /// but uses local sampling; WV replicates 64× more keys and uses local
    /// sampling; MF's untuned configuration was already near-optimal.
    pub fn nups_tuned(task_name: &str) -> VariantSpec {
        let v = match task_name {
            "kge" => NupsVariant { scheme: Some(SamplingScheme::Local), ..NupsVariant::default() },
            "wv" => NupsVariant {
                replication_factor: 64.0,
                scheme: Some(SamplingScheme::Local),
                ..NupsVariant::default()
            },
            _ => NupsVariant::default(),
        };
        Self::nups("NuPS", v)
    }

    /// Ablation (Figure 7): multi-technique management, no sampling
    /// integration.
    pub fn ablation_relocation_replication() -> VariantSpec {
        Self::nups(
            "Relocation + Replication",
            NupsVariant { scheme: Some(SamplingScheme::Manual), ..NupsVariant::default() },
        )
    }

    /// Ablation (Figure 7): relocation-only management with sampling
    /// integration.
    pub fn ablation_relocation_sampling() -> VariantSpec {
        Self::nups(
            "Relocation + Sampling",
            NupsVariant { replication_factor: 0.0, ..NupsVariant::default() },
        )
    }

    /// Section 5.6 sweep: NuPS with `factor ×` the heuristic's replicated
    /// key count.
    pub fn nups_replication_factor(factor: f64) -> VariantSpec {
        Self::nups(
            &format!("NuPS ({factor}x replication)"),
            NupsVariant { replication_factor: factor, ..NupsVariant::default() },
        )
    }

    /// Section 5.7 sweep: NuPS at a given sync frequency.
    pub fn nups_sync(sync: SyncSetting) -> VariantSpec {
        let name = match sync {
            SyncSetting::Default => "NuPS (25 syncs/s)".to_string(),
            SyncSetting::PerSecond(f) => format!("NuPS ({f} syncs/s)"),
            SyncSetting::Never => "NuPS (no sync)".to_string(),
        };
        Self::nups(&name, NupsVariant { sync, ..NupsVariant::default() })
    }

    /// Section 5.5 sweep: NuPS with an explicit sampling scheme.
    pub fn nups_scheme(name: &str, scheme: SamplingScheme) -> VariantSpec {
        Self::nups(name, NupsVariant { scheme: Some(scheme), ..NupsVariant::default() })
    }

    /// NuPS with adaptive technique management: starts from the static
    /// heuristic assignment and migrates keys online.
    pub fn nups_adaptive(adaptive: AdaptiveConfig) -> VariantSpec {
        Self::nups(
            "NuPS (adaptive)",
            NupsVariant { adaptive: Some(adaptive), ..NupsVariant::default() },
        )
    }

    /// The Figure 10 scheme ladder.
    pub fn scheme_ladder() -> Vec<VariantSpec> {
        vec![
            Self::nups_scheme("Independent (CONFORM)", SamplingScheme::Independent),
            Self::nups_scheme(
                "Sample reuse U=16 (BOUNDED)",
                SamplingScheme::Reuse(ReuseParams { pool_size: 250, use_frequency: 16 }),
            ),
            Self::nups_scheme(
                "Sample reuse U=64 (BOUNDED)",
                SamplingScheme::Reuse(ReuseParams { pool_size: 250, use_frequency: 64 }),
            ),
            Self::nups_scheme(
                "Reuse w/ postponing U=16 (LONG-TERM)",
                SamplingScheme::ReuseWithPostponing(ReuseParams {
                    pool_size: 250,
                    use_frequency: 16,
                }),
            ),
            Self::nups_scheme("Local sampling (NON-CONFORM)", SamplingScheme::Local),
        ]
    }
}
