//! Figure 6 (and the Figure 1 teaser): end-to-end comparison of all
//! systems on all three tasks — quality over (virtual) time and over
//! epochs, plus the raw/effective speedup summary of Section 5.2.
//!
//! Usage:
//!   cargo run --release -p nups-bench --bin fig6_end_to_end -- \
//!     [--task kge|wv|mf] [--nodes 4] [--workers 2] [--epochs 6] [--scale small]

use nups_bench::report::{
    effective_speedup, fmt_duration, fmt_quality, fmt_speedup, print_series, print_table,
    raw_speedup,
};
use nups_bench::{build_task, run, Args, RunConfig, VariantSpec};

fn main() {
    let args = Args::parse();
    let topology = args.topology();
    let epochs = args.epochs(6);

    for kind in args.tasks() {
        let scale = args.scale();
        let factory = move |topo| build_task(kind, scale, topo);
        let task = factory(topology); // for name/direction only
        let cfg = RunConfig::new(topology, epochs);

        let variants = vec![
            VariantSpec::single_node(),
            VariantSpec::classic(),
            VariantSpec::petuum_ssp(10),
            VariantSpec::petuum_essp(10),
            VariantSpec::lapse(),
            VariantSpec::nups_untuned(),
            VariantSpec::nups_tuned(task.name()),
        ];

        println!(
            "\n##### Figure 6 — task {} on {} nodes x {} workers #####",
            task.name(),
            topology.n_nodes,
            topology.workers_per_node
        );
        let mut results = Vec::new();
        for v in &variants {
            eprintln!("[fig6] {} / {}", task.name(), v.name);
            let r = run(&factory, v, &cfg);
            print_series(&r);
            results.push(r);
        }

        let single = &results[0];
        let dir = task.quality_direction();
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    fmt_duration(r.epoch_time()),
                    fmt_quality(r.final_quality()),
                    fmt_speedup(Some(raw_speedup(single, r))),
                    fmt_speedup(effective_speedup(single, r, dir)),
                    format!("{}", r.metrics.msgs_sent),
                    format!("{:.1}", r.metrics.bytes_sent as f64 / 1e6),
                    format!("{}", r.metrics.remote_pulls + r.metrics.remote_pushes),
                    format!("{}", r.metrics.relocation_conflicts),
                    format!("{}", r.metrics.relocations),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 6 summary — {}", task.name()),
            &[
                "system",
                "epoch time",
                "final quality",
                "raw speedup",
                "eff. speedup",
                "msgs",
                "MB sent",
                "remote ops",
                "conflicts",
                "relocations",
            ],
            &rows,
        );
    }
}
